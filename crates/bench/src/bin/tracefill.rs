//! `tracefill` — command-line driver for the simulator.
//!
//! ```text
//! tracefill run <file.s> [--opts all|none|moves,reassoc,scadd,placement,cse]
//!                        [--replace lru|srrip|trrip] [--self-repair]
//!                        [--input 1,2,3] [--max-cycles N] [--json] [--ledger]
//!                        [--stats-json <file>]  # write the full report JSON
//!                        [--trace N]   # print the last N pipeline events
//! tracefill trace <file.s> [--out <file>] [--format jsonl|chrome] [--depth N]
//!                          [--opts SPEC] [--input 1,2,3] [--max-cycles N] [--ledger]
//! tracefill interp <file.s> [--input 1,2,3]
//! tracefill characterize <file.s>
//! tracefill suite [--opts SPEC] [--budget N]
//! tracefill ledger [--bench NAME[,NAME...]|all] [--opts SPEC] [--replace P]
//!                  [--seed N] [--warmup N] [--budget N] [--latency N]
//!                  [--top N] [--max-cycles N] [--json] [--out <file>]
//! tracefill campaign <fig8|table2|spec.json> [--out results.jsonl] [--jobs N] [--quiet]
//!                    [--quarantine-after K] [--wall-budget-ms N]
//! tracefill report <results.jsonl> [--format fig8|table2|cpi|ledger|repair|summary|all]
//! tracefill verify [<file.s>] [--opts SPEC[:SPEC...]] [--budget N] [--max-cycles N]
//! tracefill inject [--bench NAME] [--opts SPEC[:SPEC...]] [--seed N] [--trials N]
//!                  [--faults N] [--horizon N] [--kinds a,b,c] [--detect strict|oracle|none]
//!                  [--budget N] [--json] [--self-repair]
//! tracefill heal [--bench NAME] [--opts SPEC[:SPEC...]] [--seed N] [--trials N]
//!                [--faults N] [--horizon N] [--kinds a,b,c] [--budget N]
//!                [--quarantine-after K] [--disable-after M] [--json]
//! tracefill adapt [--bench NAME[,NAME...]] [--opts SPEC[:SPEC...]]
//!                 [--mode egreedy[:MILLI]|ucb[:MILLI]|static:SPEC] [--seed N]
//!                 [--replace lru|srrip|trrip] [--latency N] [--warmup N]
//!                 [--budget N] [--epoch N] [--max-cycles N] [--json] [--out <file>]
//! ```
//!
//! Numeric flags are parsed strictly: a malformed value is a usage error
//! (exit 2), never a silent fall-back to the default.

use std::process::exit;
use tracefill_core::config::{ControllerMode, OptConfig, ReplacementKind};
use tracefill_harness::grid::parse_opt_spec;
use tracefill_harness::{
    report, run_adapt, run_campaign_with, store, AdaptSpec, CampaignOptions, CampaignSpec,
    ResultStore,
};
use tracefill_isa::asm::assemble;
use tracefill_isa::interp::{Halt, Interp};
use tracefill_isa::syscall::IoCtx;
use tracefill_isa::Program;
use tracefill_sim::{FaultKind, FaultPlan, RepairConfig, RunExit, SimConfig, Simulator};
use tracefill_util::Json;

fn usage() -> ! {
    eprintln!(
        "usage:
  tracefill run <file.s> [--opts SPEC] [--replace lru|srrip|trrip] [--input a,b,c] [--max-cycles N] [--json] [--ledger] [--self-repair] [--stats-json <file>] [--trace N]
  tracefill trace <file.s> [--out <file>] [--format jsonl|chrome] [--depth N] [--opts SPEC] [--input a,b,c] [--max-cycles N] [--ledger]
  tracefill interp <file.s> [--input a,b,c]
  tracefill characterize <file.s>
  tracefill suite [--opts SPEC] [--budget N]
  tracefill ledger [--bench NAME[,NAME...]|all] [--opts SPEC] [--replace lru|srrip|trrip]
                   [--seed N] [--warmup N] [--budget N] [--latency N] [--top N]
                   [--max-cycles N] [--json] [--out <file>]
  tracefill campaign <fig8|table2|spec.json> [--out results.jsonl] [--jobs N] [--quiet]
                     [--quarantine-after K] [--wall-budget-ms N]
  tracefill report <results.jsonl> [--format fig8|table2|cpi|ledger|repair|summary|all]
  tracefill verify [<file.s>] [--opts SPEC[:SPEC...]] [--budget N] [--max-cycles N]
  tracefill inject [--bench NAME] [--opts SPEC[:SPEC...]] [--seed N] [--trials N]
                   [--faults N] [--horizon N] [--kinds a,b,c] [--detect strict|oracle|none]
                   [--budget N] [--json] [--self-repair]
  tracefill heal [--bench NAME] [--opts SPEC[:SPEC...]] [--seed N] [--trials N]
                 [--faults N] [--horizon N] [--kinds a,b,c] [--budget N]
                 [--quarantine-after K] [--disable-after M] [--json]
  tracefill adapt [--bench NAME[,NAME...]] [--opts SPEC[:SPEC...]]
                  [--mode egreedy[:MILLI]|ucb[:MILLI]|static:SPEC] [--seed N]
                  [--replace lru|srrip|trrip] [--latency N] [--warmup N]
                  [--budget N] [--epoch N] [--max-cycles N] [--json] [--out <file>]

SPEC is `all`, `none`, or a comma list of: moves reassoc scadd placement cse
`verify`, `inject` and `adapt` take several SPECs separated by `:`"
    );
    exit(2);
}

fn parse_opts(spec: &str) -> OptConfig {
    parse_opt_spec(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

/// Parses a colon-separated list of opt specs into `(label, config)`
/// pairs, e.g. `none:moves:all`.
fn parse_opt_list(list: &str) -> Vec<(String, OptConfig)> {
    list.split(':')
        .filter(|s| !s.is_empty())
        .map(|s| (s.to_string(), parse_opts(s)))
        .collect()
}

/// The `--replace` flag: a trace-cache replacement policy (default LRU).
fn parse_replace(args: &[String]) -> ReplacementKind {
    match flag_value(args, "--replace") {
        None => ReplacementKind::Lru,
        Some(v) => ReplacementKind::parse(&v).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        }),
    }
}

/// The value following `name`, if the flag is present. A flag given
/// without a value is a usage error.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("{name} requires a value");
            exit(2);
        }
    }
}

/// Strict numeric flag: absent → `default`; present but malformed →
/// usage error (exit 2). Never silently falls back.
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value `{v}` for {name}");
            exit(2);
        }),
    }
}

/// Validates an output path *before* the simulation runs: the parent
/// directory must exist and the path must not name a directory, so a
/// typo'd `--out`/`--stats-json` fails in milliseconds instead of after
/// minutes of simulated cycles.
fn ensure_writable_path(path: &str) {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        eprintln!("cannot write {path}: path is a directory");
        exit(1);
    }
    if let Some(parent) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
        if !parent.is_dir() {
            eprintln!(
                "cannot write {path}: parent directory `{}` does not exist",
                parent.display()
            );
            exit(1);
        }
    }
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    assemble(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    })
}

fn parse_input(args: &[String]) -> IoCtx {
    match flag_value(args, "--input") {
        Some(list) => IoCtx::with_input(list.split(',').filter(|p| !p.is_empty()).map(|p| {
            p.parse().unwrap_or_else(|_| {
                eprintln!("bad input value `{p}`");
                exit(2);
            })
        })),
        None => IoCtx::default(),
    }
}

fn cmd_run(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let max_cycles: u64 = parse_flag(args, "--max-cycles", 200_000_000);
    if max_cycles == 0 {
        eprintln!("--max-cycles must be at least 1 (a zero-cycle run measures nothing)");
        exit(1);
    }
    let json = args.iter().any(|a| a == "--json");
    let trace_depth: usize = parse_flag(args, "--trace", 0);
    let stats_json = flag_value(args, "--stats-json");
    if let Some(p) = &stats_json {
        ensure_writable_path(p);
    }

    let mut cfg = SimConfig {
        trace_depth,
        ..SimConfig::with_opts(opts)
    };
    cfg.tcache.policy = parse_replace(args);
    cfg.ledger = args.iter().any(|a| a == "--ledger");
    cfg.self_repair.enabled = args.iter().any(|a| a == "--self-repair");
    let mut sim = Simulator::with_io(&prog, cfg, parse_input(args));
    let exit_state = sim.run(max_cycles).unwrap_or_else(|e| {
        eprintln!("simulation error: {e}");
        exit(1);
    });
    let report = sim.report();
    if let Some(stats_path) = stats_json {
        let text = report.to_json().dump_pretty(2);
        std::fs::write(&stats_path, text + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {stats_path}: {e}");
            exit(1);
        });
    }
    if json {
        println!("{}", report.to_json().dump_pretty(2));
        return;
    }
    let s = report.stats;
    println!("exit        : {exit_state:?}");
    println!("output      : {:?}", sim.io().output);
    println!("cycles      : {}", s.cycles);
    println!("retired     : {}", s.retired);
    println!("IPC         : {:.3}", s.ipc());
    println!("from TC     : {:.1}%", s.tc_fraction() * 100.0);
    println!("TC hit rate : {:.1}%", report.tcache.hit_rate() * 100.0);
    println!("mispredict  : {:.2}%", s.mispredict_rate() * 100.0);
    println!(
        "transformed : {:.1}% (moves {} / reassoc {} / scadd {})",
        s.transformed_fraction() * 100.0,
        s.retired_moves,
        s.retired_reassoc,
        s.retired_scadd
    );
    println!(
        "bypass-delayed: {:.1}% of FU-executed instructions",
        s.bypass_delay_fraction() * 100.0
    );
    if !sim.repairs().is_empty() {
        println!(
            "self-repair : {} contained failure(s) (see `tracefill heal` for a sweep)",
            sim.repairs().len()
        );
        for ev in sim.repairs() {
            println!("  {ev}");
        }
    }
    if sim.ledger().enabled() {
        let led = sim.ledger();
        let hits: u64 = led.records().map(|r| r.hits).sum();
        let doa = led.records().filter(|r| r.is_doa()).count();
        println!(
            "ledger      : {} segments, {hits} hits, {doa} dead-on-arrival (see `tracefill ledger`)",
            led.len()
        );
    }
    let cpi = report.cpi;
    if cpi.base > 0 {
        println!("CPI stack   : {:.4} total", 1.0 / s.ipc());
        println!("  {:<15} {:.4}", "base", cpi.cpi_of(cpi.base));
        for (name, slots) in cpi.stall_slots() {
            if slots > 0 {
                println!("  {:<15} {:.4}", name, cpi.cpi_of(slots));
            }
        }
    }
    if trace_depth > 0 {
        println!("--- last {} pipeline events ---", sim.trace().len());
        print!("{}", sim.trace().render());
    }
}

fn cmd_trace(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let prog = load(path);
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let depth: usize = parse_flag(args, "--depth", 65_536);
    if depth == 0 {
        eprintln!("--depth must be at least 1");
        exit(2);
    }
    let max_cycles: u64 = parse_flag(args, "--max-cycles", 200_000_000);
    let format = flag_value(args, "--format").unwrap_or_else(|| "jsonl".into());
    if !matches!(format.as_str(), "jsonl" | "chrome") {
        eprintln!("unknown trace format `{format}` (expected jsonl, chrome)");
        exit(2);
    }
    let ledger = args.iter().any(|a| a == "--ledger");
    let out = flag_value(args, "--out");
    if let Some(o) = &out {
        ensure_writable_path(o);
    }

    let mut cfg = SimConfig {
        trace_depth: depth,
        ..SimConfig::with_opts(opts)
    };
    cfg.ledger = ledger;
    let mut sim = Simulator::with_io(&prog, cfg, parse_input(args));
    sim.run(max_cycles).unwrap_or_else(|e| {
        eprintln!("simulation error: {e}");
        exit(1);
    });
    let text = match format.as_str() {
        "jsonl" => sim.trace().to_jsonl(),
        // With the ledger on, the chrome export gains one track per
        // segment life (fill → eviction) alongside the pipeline events.
        "chrome" if ledger => {
            sim.trace()
                .to_chrome_trace_with_ledger(sim.ledger(), sim.cycle())
                .dump_pretty(2)
                + "\n"
        }
        "chrome" => sim.trace().to_chrome_trace().dump_pretty(2) + "\n",
        _ => unreachable!("format validated above"),
    };
    match out {
        Some(out) => {
            std::fs::write(&out, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1);
            });
            eprintln!(
                "wrote {} events ({} bytes, {format}) -> {out}",
                sim.trace().len(),
                text.len()
            );
        }
        None => print!("{text}"),
    }
}

fn cmd_interp(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let mut i = Interp::with_io(&prog, parse_input(args));
    match i.run(2_000_000_000) {
        Ok(h) => {
            println!("halt   : {h:?}");
            println!("instrs : {}", i.icount());
            println!("output : {:?}", i.io().output);
        }
        Err(e) => {
            eprintln!("fault: {e}");
            exit(1);
        }
    }
}

fn cmd_characterize(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let c = tracefill_workloads::characterize(&prog, 1_000_000);
    println!("instructions measured : {}", c.instrs);
    println!("register-move idioms  : {:5.2}%", c.moves * 100.0);
    println!("reassociable chains   : {:5.2}%", c.reassoc * 100.0);
    println!("scaled-add pairs      : {:5.2}%", c.scadd * 100.0);
    println!("total transformable   : {:5.2}%", c.total() * 100.0);
    println!("conditional branches  : {:5.2}%", c.branches * 100.0);
    println!(
        "loads / stores        : {:5.2}% / {:.2}%",
        c.loads * 100.0,
        c.stores * 100.0
    );
}

fn cmd_suite(args: &[String]) {
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let budget: u64 = parse_flag(args, "--budget", 100_000);
    println!(
        "{:6} {:>9} {:>9} {:>8}",
        "bench", "base IPC", "opt IPC", "delta"
    );
    for b in tracefill_workloads::suite() {
        let prog = b.program(b.scale_for(3 * budget)).unwrap();
        let measure = |o: OptConfig| {
            let mut sim = Simulator::new(&prog, SimConfig::with_opts(o));
            sim.run_instrs(budget).unwrap();
            let (c0, r0) = (sim.cycle(), sim.stats().retired);
            sim.run_instrs(budget).unwrap();
            (sim.stats().retired - r0) as f64 / (sim.cycle() - c0) as f64
        };
        let base = measure(OptConfig::none());
        let opt = measure(opts);
        println!(
            "{:6} {:9.3} {:9.3} {:+7.1}%",
            b.name,
            base,
            opt,
            (opt / base - 1.0) * 100.0
        );
    }
}

/// Resolves a campaign argument: a builtin name (`fig8`, `table2`) or a
/// path to a JSON spec file.
fn load_spec(arg: &str) -> CampaignSpec {
    if let Some(spec) = CampaignSpec::builtin(arg) {
        return spec;
    }
    let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        eprintln!("`{arg}` is not a builtin campaign (fig8, table2) and cannot be read as a spec file: {e}");
        exit(1);
    });
    CampaignSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{arg}: {e}");
        exit(1);
    })
}

fn cmd_campaign(args: &[String]) {
    let Some(spec_arg) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let spec = load_spec(spec_arg);
    let out = flag_value(args, "--out").unwrap_or_else(|| format!("{}.jsonl", spec.name));
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs: usize = parse_flag(args, "--jobs", default_jobs);
    if jobs == 0 {
        eprintln!("--jobs must be at least 1");
        exit(2);
    }
    let quiet = args.iter().any(|a| a == "--quiet");
    let quarantine_after: u32 = parse_flag(args, "--quarantine-after", 3);
    let wall_budget_ms: u64 = parse_flag(args, "--wall-budget-ms", 0);

    let mut store = ResultStore::open(&out).unwrap_or_else(|e| {
        eprintln!("cannot open {out}: {e}");
        exit(1);
    });
    let options = CampaignOptions {
        jobs,
        live_progress: !quiet,
        quarantine_after,
        cancel: None,
        wall_budget_ms,
    };
    let summary = run_campaign_with(&spec, &mut store, &options).unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        exit(1);
    });
    println!(
        "campaign `{}`: {} runs ({} resumed, {} executed, {} failed, {} quarantined) in {:.1}s -> {}",
        spec.name,
        summary.total,
        summary.skipped,
        summary.executed,
        summary.failed,
        summary.quarantined,
        summary.wall_ms as f64 / 1000.0,
        out,
    );
    if summary.cancelled {
        eprintln!("note: campaign was cancelled (wall budget); resume with the same command");
    }
    if summary.failed > 0 {
        eprintln!(
            "note: {} run(s) did not finish Ok; see `tracefill report {out} --format summary`",
            summary.failed
        );
    }
}

/// Lockstep-oracle verification: every workload (or one file) under every
/// requested optimization set, strict segment verification *and* retire-time
/// oracle checking on. Any divergence prints the structured report and
/// fails the command.
fn cmd_verify(args: &[String]) {
    let opt_list = parse_opt_list(
        &flag_value(args, "--opts")
            .unwrap_or_else(|| "none:moves:reassoc:scadd:placement:cse:all".into()),
    );
    if opt_list.is_empty() {
        usage();
    }
    let budget: u64 = parse_flag(args, "--budget", 30_000);
    let max_cycles: u64 = parse_flag(args, "--max-cycles", 5_000_000);

    let programs: Vec<(String, Program)> = match args.first().filter(|a| !a.starts_with("--")) {
        Some(path) => vec![(path.clone(), load(path))],
        None => tracefill_workloads::suite()
            .into_iter()
            .map(|b| {
                let prog = b.program(b.scale_for(budget)).unwrap_or_else(|e| {
                    eprintln!("{}: {e}", b.name);
                    exit(1);
                });
                (b.name.to_string(), prog)
            })
            .collect(),
    };

    let mut passed = 0u64;
    let mut diverged = 0u64;
    for (name, prog) in &programs {
        for (label, opts) in &opt_list {
            let mut sim = Simulator::new(prog, SimConfig::with_opts(*opts));
            match sim.run_budgeted(budget, max_cycles, None) {
                Ok(_) => {
                    passed += 1;
                    println!(
                        "PASS {:<8} opts={:<26} retired={} cycles={}",
                        name,
                        label,
                        sim.stats().retired,
                        sim.cycle()
                    );
                }
                Err(e) => {
                    diverged += 1;
                    eprintln!("FAIL {name} opts={label}");
                    match e.divergence() {
                        Some(rep) => eprintln!("{rep}"),
                        None => eprintln!("{e}"),
                    }
                }
            }
        }
    }
    println!(
        "verify: {passed} configuration(s) passed, {diverged} diverged (budget {budget} instrs each)"
    );
    if diverged > 0 {
        exit(1);
    }
}

/// Outcome keys for the SDC table, in fixed print order. `recovered` and
/// `fatal` only populate when the sweep runs with `--self-repair`:
/// `recovered` counts runs that contained at least one failure and still
/// finished bit-clean; `fatal` counts armed runs that died anyway.
const INJECT_OUTCOMES: [&str; 12] = [
    "injected",
    "detected.verify",
    "detected.fill_verify",
    "detected.oracle",
    "detected.watchdog",
    "detected.panic",
    "detected.simerror",
    "recovered",
    "fatal",
    "masked",
    "silent",
    "unfired",
];

/// The `--kinds` flag: a comma list of fault kinds (default: all).
fn parse_fault_kinds(args: &[String]) -> Vec<FaultKind> {
    let kinds: Vec<FaultKind> = match flag_value(args, "--kinds") {
        None => FaultKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                FaultKind::parse(s).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fault kind `{s}` (expected: {})",
                        FaultKind::ALL.map(FaultKind::name).join(", ")
                    );
                    exit(2);
                })
            })
            .collect(),
    };
    if kinds.is_empty() {
        usage();
    }
    kinds
}

/// Deterministic fault-injection campaign: per opt set, run `--trials`
/// seeded [`FaultPlan`]s and classify each run as detected (by which
/// layer), masked, silent (SDC), or unfired. The same seed always produces
/// the same table.
fn cmd_inject(args: &[String]) {
    let bench_name = flag_value(args, "--bench").unwrap_or_else(|| "m88k".into());
    let bench = tracefill_workloads::by_name(&bench_name).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark `{bench_name}` (expected one of: {})",
            tracefill_workloads::names().join(", ")
        );
        exit(2);
    });
    let opt_list = parse_opt_list(&flag_value(args, "--opts").unwrap_or_else(|| "none:all".into()));
    if opt_list.is_empty() {
        usage();
    }
    let seed: u64 = parse_flag(args, "--seed", 1);
    let trials: u64 = parse_flag(args, "--trials", 20);
    let faults: usize = parse_flag(args, "--faults", 4);
    let horizon: u64 = parse_flag(args, "--horizon", 400);
    let budget: u64 = parse_flag(args, "--budget", 20_000);
    let json = args.iter().any(|a| a == "--json");
    let self_repair = args.iter().any(|a| a == "--self-repair");
    let detect = flag_value(args, "--detect").unwrap_or_else(|| "strict".into());
    if !matches!(detect.as_str(), "strict" | "oracle" | "none") {
        eprintln!("unknown detect mode `{detect}` (expected strict, oracle, none)");
        exit(2);
    }
    if self_repair && detect == "none" {
        eprintln!("--self-repair requires the lockstep oracle (--detect strict or oracle)");
        exit(2);
    }
    let kinds = parse_fault_kinds(args);

    // A scale at which the kernel *halts* within the budget, so clean runs
    // produce a complete, comparable output stream.
    let scale = ((budget / u64::from(bench.instrs_per_scale.max(1))).max(1)) as u32;
    let prog = bench.program(scale).unwrap_or_else(|e| {
        eprintln!("{bench_name}: {e}");
        exit(1);
    });
    let mut reference = Interp::with_io(&prog, IoCtx::default());
    let ref_halt = reference
        .run(budget.saturating_mul(50))
        .unwrap_or_else(|e| {
            eprintln!("reference interpreter faulted: {e}");
            exit(1);
        });
    let ref_output = reference.io().output.clone();

    // A fault-induced panic is a *detection* here; keep its default
    // backtrace off stderr so campaign output stays readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut tables: Vec<(String, std::collections::BTreeMap<&'static str, u64>)> = Vec::new();
    for (label, opts) in &opt_list {
        let mut table: std::collections::BTreeMap<&'static str, u64> =
            INJECT_OUTCOMES.iter().map(|k| (*k, 0)).collect();
        for trial in 0..trials {
            let plan_seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial + 1));
            let plan = FaultPlan::generate(plan_seed, faults, horizon, &kinds);
            let mut cfg = SimConfig::with_opts(*opts);
            cfg.fault_plan = Some(plan);
            cfg.self_repair.enabled = self_repair;
            match detect.as_str() {
                "strict" => {}
                "oracle" => cfg.fill.strict_verify = false,
                _ => {
                    cfg.fill.strict_verify = false;
                    cfg.oracle_check = false;
                }
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut sim = Simulator::new(&prog, cfg);
                let exit_state = sim.run_budgeted(budget.saturating_mul(10), 50_000_000, None);
                let fill_verify = sim.report().metrics.counter("fault.detected.fill_verify");
                (
                    exit_state,
                    sim.faults_fired(),
                    fill_verify,
                    sim.io().output.clone(),
                    sim.repairs().len() as u64,
                )
            }));
            let key = match outcome {
                Err(_) => "detected.panic",
                Ok((run, fired, fill_verify, output, repairs)) => {
                    *table.get_mut("injected").unwrap() += fired;
                    match run {
                        // An armed machine that still dies is the number the
                        // repair ladder exists to drive to zero.
                        Err(_) if self_repair => "fatal",
                        Err(e) => match e.divergence() {
                            Some(rep) if rep.kind == "segment-verify" => "detected.verify",
                            Some(_) => "detected.oracle",
                            None => "detected.simerror",
                        },
                        Ok(_) if fired == 0 => "unfired",
                        Ok(RunExit::Exited(code)) => {
                            let clean = output == ref_output && ref_halt == Halt::Exited(code);
                            match (clean, repairs > 0, fill_verify > 0) {
                                (true, true, _) => "recovered",
                                (true, false, true) => "detected.fill_verify",
                                (true, false, false) => "masked",
                                (false, ..) => "silent",
                            }
                        }
                        Ok(RunExit::Break) => {
                            let clean = output == ref_output && ref_halt == Halt::Break;
                            match (clean, repairs > 0, fill_verify > 0) {
                                (true, true, _) => "recovered",
                                (true, false, true) => "detected.fill_verify",
                                (true, false, false) => "masked",
                                (false, ..) => "silent",
                            }
                        }
                        Ok(RunExit::CycleLimit | RunExit::InstrLimit | RunExit::Cancelled) => {
                            "detected.watchdog"
                        }
                    }
                }
            };
            *table.get_mut(key).unwrap() += 1;
        }
        tables.push((label.clone(), table));
    }
    std::panic::set_hook(prev_hook);

    if json {
        let mut results = Json::object();
        for (label, table) in &tables {
            let mut row = Json::object();
            for key in INJECT_OUTCOMES {
                row = row.with(key, table[key]);
            }
            results = results.with(label, row);
        }
        let doc = Json::object()
            .with("bench", bench.name)
            .with("seed", seed)
            .with("trials", trials)
            .with("faults_per_trial", faults)
            .with("horizon", horizon)
            .with("detect", detect.as_str())
            .with("self_repair", self_repair)
            .with(
                "kinds",
                Json::Arr(kinds.iter().map(|k| Json::from(k.name())).collect()),
            )
            .with("results", results);
        println!("{}", doc.dump_pretty(2));
        return;
    }

    println!(
        "fault injection: bench={} seed={seed} trials={trials} faults/trial={faults} horizon={horizon} detect={detect} self-repair={}",
        bench.name,
        if self_repair { "on" } else { "off" }
    );
    print!("{:<22}", "outcome");
    for (label, _) in &tables {
        print!(" {label:>12}");
    }
    println!();
    for key in INJECT_OUTCOMES {
        print!("{key:<22}");
        for (_, table) in &tables {
            print!(" {:>12}", table[key]);
        }
        println!();
    }
    let sdc: u64 = tables.iter().map(|(_, t)| t["silent"]).sum();
    if sdc > 0 {
        println!("note: {sdc} silent-data-corruption run(s) — re-run with --detect strict to see the checkers catch them");
    }
}

/// Per-cell availability counters for one `heal` sweep cell.
#[derive(Default)]
struct HealCell {
    recovered: u64,
    clean: u64,
    silent: u64,
    hung: u64,
    fatal: u64,
    repairs: u64,
    quarantines: u64,
    disables: u64,
    injected: u64,
}

/// Self-repair availability sweep: every trial runs with the repair
/// ladder armed and the faults striking the trace-cache read path
/// (fill-side strict verify off, so *containment* — not early detection —
/// does the work). The sweep's contract is the acceptance bar: zero fatal
/// divergences; the exit code is 1 if any armed run dies. Same seed ⇒
/// byte-identical JSON.
fn cmd_heal(args: &[String]) {
    let bench_name = flag_value(args, "--bench").unwrap_or_else(|| "m88k".into());
    let bench = tracefill_workloads::by_name(&bench_name).unwrap_or_else(|| {
        eprintln!(
            "unknown benchmark `{bench_name}` (expected one of: {})",
            tracefill_workloads::names().join(", ")
        );
        exit(2);
    });
    let opt_list = parse_opt_list(&flag_value(args, "--opts").unwrap_or_else(|| "none:all".into()));
    if opt_list.is_empty() {
        usage();
    }
    let seed: u64 = parse_flag(args, "--seed", 1);
    let trials: u64 = parse_flag(args, "--trials", 20);
    let faults: usize = parse_flag(args, "--faults", 4);
    let horizon: u64 = parse_flag(args, "--horizon", 400);
    let budget: u64 = parse_flag(args, "--budget", 20_000);
    let ladder_default = RepairConfig::default();
    let quarantine_after: u64 =
        parse_flag(args, "--quarantine-after", ladder_default.quarantine_after);
    let disable_after: u64 = parse_flag(args, "--disable-after", ladder_default.disable_after);
    let json = args.iter().any(|a| a == "--json");
    let kinds = parse_fault_kinds(args);

    let scale = ((budget / u64::from(bench.instrs_per_scale.max(1))).max(1)) as u32;
    let prog = bench.program(scale).unwrap_or_else(|e| {
        eprintln!("{bench_name}: {e}");
        exit(1);
    });
    let mut reference = Interp::with_io(&prog, IoCtx::default());
    let ref_halt = reference
        .run(budget.saturating_mul(50))
        .unwrap_or_else(|e| {
            eprintln!("reference interpreter faulted: {e}");
            exit(1);
        });
    let ref_output = reference.io().output.clone();

    // A fault-induced panic counts as fatal here; keep its backtrace off
    // stderr so the sweep output stays readable.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut cells: Vec<(String, HealCell)> = Vec::new();
    for (label, opts) in &opt_list {
        let mut cell = HealCell::default();
        for trial in 0..trials {
            let plan_seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial + 1));
            let plan = FaultPlan::generate(plan_seed, faults, horizon, &kinds);
            let mut cfg = SimConfig::with_opts(*opts);
            cfg.fault_plan = Some(plan);
            cfg.fill.strict_verify = false;
            cfg.self_repair.enabled = true;
            cfg.self_repair.quarantine_after = quarantine_after;
            cfg.self_repair.disable_after = disable_after;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut sim = Simulator::new(&prog, cfg);
                let exit_state = sim.run_budgeted(budget.saturating_mul(10), 50_000_000, None);
                let m = sim.report().metrics;
                (
                    exit_state,
                    sim.faults_fired(),
                    sim.io().output.clone(),
                    sim.repairs().len() as u64,
                    m.counter("repair.quarantined"),
                    m.counter("repair.disabled"),
                )
            }));
            let Ok((run, fired, output, repairs, quarantines, disables)) = outcome else {
                cell.fatal += 1;
                continue;
            };
            cell.injected += fired;
            cell.repairs += repairs;
            cell.quarantines += quarantines;
            cell.disables += disables;
            match run {
                Err(_) => cell.fatal += 1,
                Ok(RunExit::Exited(code)) => {
                    let ok = output == ref_output && ref_halt == Halt::Exited(code);
                    match (ok, repairs > 0) {
                        (true, true) => cell.recovered += 1,
                        (true, false) => cell.clean += 1,
                        (false, _) => cell.silent += 1,
                    }
                }
                Ok(RunExit::Break) => {
                    let ok = output == ref_output && ref_halt == Halt::Break;
                    match (ok, repairs > 0) {
                        (true, true) => cell.recovered += 1,
                        (true, false) => cell.clean += 1,
                        (false, _) => cell.silent += 1,
                    }
                }
                Ok(RunExit::CycleLimit | RunExit::InstrLimit | RunExit::Cancelled) => {
                    cell.hung += 1;
                }
            }
        }
        cells.push((label.clone(), cell));
    }
    std::panic::set_hook(prev_hook);

    let fatal_total: u64 = cells.iter().map(|(_, c)| c.fatal).sum();
    if json {
        let mut results = Json::object();
        for (label, c) in &cells {
            results = results.with(
                label,
                Json::object()
                    .with("trials", trials)
                    .with("recovered", c.recovered)
                    .with("clean", c.clean)
                    .with("silent", c.silent)
                    .with("hung", c.hung)
                    .with("fatal", c.fatal)
                    .with("repairs", c.repairs)
                    .with("quarantines", c.quarantines)
                    .with("disables", c.disables)
                    .with("injected", c.injected),
            );
        }
        let doc = Json::object()
            .with("bench", bench.name)
            .with("seed", seed)
            .with("trials", trials)
            .with("faults_per_trial", faults)
            .with("horizon", horizon)
            .with(
                "ladder",
                Json::object()
                    .with("quarantine_after", quarantine_after)
                    .with("disable_after", disable_after),
            )
            .with(
                "kinds",
                Json::Arr(kinds.iter().map(|k| Json::from(k.name())).collect()),
            )
            .with("results", results);
        println!("{}", doc.dump_pretty(2));
    } else {
        println!(
            "self-repair sweep: bench={} seed={seed} trials={trials} faults/trial={faults} horizon={horizon} ladder={quarantine_after}/{disable_after}",
            bench.name
        );
        println!(
            "{:<10} {:>9} {:>6} {:>6} {:>5} {:>6} {:>8} {:>11} {:>9} {:>7}",
            "opts",
            "recovered",
            "clean",
            "silent",
            "hung",
            "fatal",
            "repairs",
            "quarantines",
            "disables",
            "avail%"
        );
        for (label, c) in &cells {
            let completed = c.recovered + c.clean + c.silent;
            println!(
                "{:<10} {:>9} {:>6} {:>6} {:>5} {:>6} {:>8} {:>11} {:>9} {:>7.1}",
                label,
                c.recovered,
                c.clean,
                c.silent,
                c.hung,
                c.fatal,
                c.repairs,
                c.quarantines,
                c.disables,
                100.0 * completed as f64 / trials.max(1) as f64,
            );
        }
    }
    if fatal_total > 0 {
        eprintln!("heal: {fatal_total} fatal run(s) escaped the repair ladder");
        exit(1);
    }
}

/// Static-vs-adaptive comparison: for each benchmark, run every static
/// opt set, then one adaptive run with the online pass controller, and
/// report whether adaptation reaches the best static configuration. The
/// JSON report is deterministic — two same-seed invocations emit
/// byte-identical bytes.
fn cmd_adapt(args: &[String]) {
    let mut spec = AdaptSpec::default();
    if let Some(benches) = flag_value(args, "--bench") {
        if benches != "all" {
            spec.benchmarks = benches
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
        }
    }
    if let Some(opts) = flag_value(args, "--opts") {
        spec.opt_specs = opts
            .split(':')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
    }
    if let Some(mode) = flag_value(args, "--mode") {
        spec.mode = ControllerMode::parse(&mode).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        });
    }
    spec.seed = parse_flag(args, "--seed", spec.seed);
    spec.policy = parse_replace(args);
    spec.fill_latency = parse_flag(args, "--latency", spec.fill_latency);
    spec.warmup = parse_flag(args, "--warmup", spec.warmup);
    spec.budget = parse_flag(args, "--budget", spec.budget);
    spec.epoch_fills = parse_flag(args, "--epoch", spec.epoch_fills);
    spec.max_cycles = parse_flag(args, "--max-cycles", spec.max_cycles);
    // Zero-sized axes silently measure nothing (an epoch of 0 fills can
    // never advance the controller); reject them instead of clamping.
    if spec.epoch_fills == 0 {
        eprintln!("--epoch must be at least 1 (the controller advances once per epoch of fills)");
        exit(1);
    }
    if spec.budget == 0 {
        eprintln!("--budget must be at least 1 (a zero-instruction window measures nothing)");
        exit(1);
    }
    if spec.max_cycles == 0 {
        eprintln!("--max-cycles must be at least 1 (a zero-cycle cap stops every run at birth)");
        exit(1);
    }
    if spec.benchmarks.is_empty() {
        eprintln!("--bench selected no benchmarks (empty campaign axis)");
        exit(1);
    }
    if spec.opt_specs.is_empty() {
        eprintln!("--opts selected no optimization sets (empty campaign axis)");
        exit(1);
    }
    let out = flag_value(args, "--out");
    if let Some(o) = &out {
        ensure_writable_path(o);
    }

    let report = run_adapt(&spec).unwrap_or_else(|e| {
        eprintln!("adapt failed: {e}");
        exit(1);
    });
    let text = report.dump_pretty(2) + "\n";
    if let Some(out) = out {
        std::fs::write(&out, &text).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1);
        });
        eprintln!("wrote adapt report -> {out}");
    }
    if args.iter().any(|a| a == "--json") {
        print!("{text}");
        return;
    }

    // Human-readable table from the deterministic report.
    println!(
        "adapt: controller={} policy={} seed={} warmup={} budget={} epoch={}",
        spec.mode.label(),
        spec.policy.name(),
        spec.seed,
        spec.warmup,
        spec.budget,
        spec.epoch_fills
    );
    println!(
        "{:8} {:>10} {:<12} {:>10} {:>8}",
        "bench", "best IPC", "(opts)", "adapt IPC", "delta"
    );
    let rows = report.get("benchmarks").and_then(Json::as_arr);
    for row in rows.into_iter().flatten() {
        let bench = row.get("bench").and_then(Json::as_str).unwrap_or("?");
        let best = row.get("best_static");
        let best_ipc = best
            .and_then(|b| b.get("ipc"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let best_opts = best
            .and_then(|b| b.get("opts"))
            .and_then(Json::as_str)
            .unwrap_or("?");
        let adaptive_ipc = row
            .get("adaptive")
            .and_then(|a| a.get("ipc"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        println!(
            "{:8} {:>10.3} {:<12} {:>10.3} {:>+7.1}%",
            bench,
            best_ipc,
            best_opts,
            adaptive_ipc,
            (adaptive_ipc / best_ipc.max(1e-12) - 1.0) * 100.0
        );
    }
    if let Some(s) = report.get("summary") {
        let mb = s
            .get("mean_best_static_ipc")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let ma = s
            .get("mean_adaptive_ipc")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let wins = s.get("adaptive_wins").and_then(Json::as_u64).unwrap_or(0);
        let n = s.get("benches").and_then(Json::as_u64).unwrap_or(0);
        println!(
            "mean best-static IPC {mb:.3}, mean adaptive IPC {ma:.3} ({wins}/{n} benches at or above best static)"
        );
    }
}

/// Segment-lifetime ledger report: runs each benchmark with the ledger
/// on and folds every segment's life — fill cycle, passes applied, cache
/// hits, eviction, retired uops — into the per-pass ROI report. The JSON
/// is byte-deterministic: two same-seed invocations emit identical bytes.
fn cmd_ledger(args: &[String]) {
    let bench_arg = flag_value(args, "--bench").unwrap_or_else(|| "all".into());
    let benches: Vec<&'static str> = if bench_arg == "all" {
        tracefill_workloads::names().to_vec()
    } else {
        bench_arg
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|name| {
                tracefill_workloads::by_name(name)
                    .map(|b| b.name)
                    .unwrap_or_else(|| {
                        eprintln!(
                            "unknown benchmark `{name}` (expected one of: {})",
                            tracefill_workloads::names().join(", ")
                        );
                        exit(2);
                    })
            })
            .collect()
    };
    if benches.is_empty() {
        usage();
    }
    let opt_spec = flag_value(args, "--opts").unwrap_or_else(|| "all".into());
    let opts = parse_opts(&opt_spec);
    let policy = parse_replace(args);
    let seed: u64 = parse_flag(args, "--seed", 0);
    let warmup: u64 = parse_flag(args, "--warmup", 20_000);
    let budget: u64 = parse_flag(args, "--budget", 100_000);
    let latency: u32 = parse_flag(args, "--latency", 1);
    let top: usize = parse_flag(args, "--top", 5);
    let max_cycles: u64 = parse_flag(args, "--max-cycles", 50_000_000);
    let json = args.iter().any(|a| a == "--json");
    let out = flag_value(args, "--out");
    if let Some(o) = &out {
        ensure_writable_path(o);
    }

    let mut bench_docs = Json::object();
    let mut human = String::new();
    for name in &benches {
        let bench = tracefill_workloads::by_name(name).expect("validated above");
        let prog = bench
            .program(bench.scale_for((warmup + budget) * 2))
            .unwrap_or_else(|e| {
                eprintln!("{name}: kernel failed to assemble: {e}");
                exit(1);
            });
        let mut cfg = SimConfig::with_opts(opts);
        cfg.fill.latency = latency;
        cfg.tcache.policy = policy;
        cfg.ledger = true;
        let mut sim = Simulator::new(&prog, cfg);
        sim.run_budgeted(warmup + budget, max_cycles, None)
            .unwrap_or_else(|e| {
                eprintln!("{name}: simulation error: {e}");
                exit(1);
            });
        let rep = sim.ledger().report(sim.cycle(), top);
        render_ledger_bench(&mut human, name, &rep);
        bench_docs = bench_docs.with(
            name,
            Json::object()
                .with("cycles", sim.cycle())
                .with("retired", sim.stats().retired)
                .with("ledger", rep),
        );
    }
    let doc = Json::object()
        .with("opts", opt_spec.as_str())
        .with("replace", policy.name())
        .with("latency", u64::from(latency))
        .with("seed", seed)
        .with("warmup", warmup)
        .with("budget", budget)
        .with("top", top)
        .with("benches", bench_docs);
    let text = doc.dump_pretty(2) + "\n";
    if let Some(o) = &out {
        std::fs::write(o, &text).unwrap_or_else(|e| {
            eprintln!("cannot write {o}: {e}");
            exit(1);
        });
        eprintln!("wrote ledger report -> {o}");
    }
    if json {
        print!("{text}");
    } else {
        println!(
            "segment ledger: opts={opt_spec} replace={} latency={latency} seed={seed} warmup={warmup} budget={budget}",
            policy.name()
        );
        print!("{human}");
    }
}

/// Renders one benchmark's ledger report as the human-readable block of
/// `tracefill ledger`. Reads only the deterministic report JSON, so the
/// text output is as reproducible as the `--json` one.
fn render_ledger_bench(s: &mut String, name: &str, rep: &Json) {
    use std::fmt::Write;
    let n = |key: &str| rep.get(key).and_then(Json::as_u64).unwrap_or(0);
    let q = |key: &str, p: f64| {
        rep.get(key)
            .and_then(|j| tracefill_util::Histogram::from_json(j).ok())
            .map_or(0.0, |h| h.quantile(p))
    };
    let _ = writeln!(
        s,
        "\n{name}: {} segments ({} resident, {} conflict-evicted, {} refresh-displaced, {} dead-on-arrival)",
        n("segments"),
        n("resident"),
        rep.get("evicted").map_or(0, |e| e.get("conflict").and_then(Json::as_u64).unwrap_or(0)),
        rep.get("evicted").map_or(0, |e| e.get("refresh").and_then(Json::as_u64).unwrap_or(0)),
        n("doa"),
    );
    let _ = writeln!(
        s,
        "  hits {}  uops fetched/retired/squashed {}/{}/{}  reuse p50/p90 {:.1}/{:.1}  residency p50 {:.0} cycles",
        n("hits"),
        n("uops_fetched"),
        n("uops_retired"),
        n("uops_squashed"),
        q("reuse", 0.5),
        q("reuse", 0.9),
        q("residency", 0.5),
    );
    let _ = write!(s, "  est cycles saved:");
    if let Some(per_pass) = rep.get("per_pass") {
        for pass in ["moves", "cse", "reassoc", "scadd", "placement"] {
            let saved = per_pass
                .get(pass)
                .and_then(|p| p.get("est_cycles_saved"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let _ = write!(s, " {pass}={saved}");
        }
    }
    let _ = writeln!(s);
    let top = rep.get("top").and_then(Json::as_arr);
    if top.is_some_and(|t| !t.is_empty()) {
        let _ = writeln!(
            s,
            "  {:>6} {:>10} {:>4} {:<13} {:>6} {:>9} {:>6}  passes",
            "seg", "pc", "len", "end", "hits", "uops_ret", "saved"
        );
    }
    for row in top.into_iter().flatten() {
        let g = |key: &str| row.get(key).and_then(Json::as_u64).unwrap_or(0);
        let passes: Vec<&str> = row
            .get("passes")
            .and_then(Json::as_arr)
            .into_iter()
            .flatten()
            .filter_map(Json::as_str)
            .collect();
        let _ = writeln!(
            s,
            "  {:>6} {:#010x} {:>4} {:<13} {:>6} {:>9} {:>6}  {}",
            g("seg_id"),
            g("start_pc"),
            g("len"),
            row.get("end").and_then(Json::as_str).unwrap_or("?"),
            g("hits"),
            g("uops_retired"),
            g("est_cycles_saved"),
            if passes.is_empty() {
                "-".to_string()
            } else {
                passes.join("+")
            },
        );
    }
}

fn cmd_report(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let (records, malformed) = store::load_records_counted(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    if malformed > 0 {
        eprintln!("warning: {path}: skipped {malformed} malformed row(s)");
    }
    if records.is_empty() {
        eprintln!("{path}: no parseable run records");
        exit(1);
    }
    let format = flag_value(args, "--format").unwrap_or_else(|| "all".into());
    match format.as_str() {
        "fig8" => print!("{}", report::fig8_table(&records)),
        "table2" => print!("{}", report::table2_table(&records)),
        "cpi" => print!("{}", report::cpi_table(&records)),
        "ledger" => print!("{}", report::ledger_table(&records)),
        "repair" => print!("{}", report::availability_table(&records)),
        "summary" => print!("{}", report::summary(&records)),
        "all" => {
            print!("{}", report::summary(&records));
            println!();
            print!("{}", report::fig8_table(&records));
            println!();
            print!("{}", report::table2_table(&records));
            println!();
            print!("{}", report::cpi_table(&records));
            println!();
            print!("{}", report::ledger_table(&records));
            println!();
            print!("{}", report::availability_table(&records));
        }
        other => {
            eprintln!(
                "unknown report format `{other}` (expected fig8, table2, cpi, ledger, repair, summary, all)"
            );
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("interp") => cmd_interp(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("ledger") => cmd_ledger(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("inject") => cmd_inject(&args[1..]),
        Some("heal") => cmd_heal(&args[1..]),
        Some("adapt") => cmd_adapt(&args[1..]),
        _ => usage(),
    }
}
