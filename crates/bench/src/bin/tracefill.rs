//! `tracefill` — command-line driver for the simulator.
//!
//! ```text
//! tracefill run <file.s> [--opts all|none|moves,reassoc,scadd,placement,cse]
//!                        [--input 1,2,3] [--max-cycles N] [--json]
//!                        [--stats-json <file>]  # write the full report JSON
//!                        [--trace N]   # print the last N pipeline events
//! tracefill trace <file.s> [--out <file>] [--format jsonl|chrome] [--depth N]
//!                          [--opts SPEC] [--input 1,2,3] [--max-cycles N]
//! tracefill interp <file.s> [--input 1,2,3]
//! tracefill characterize <file.s>
//! tracefill suite [--opts SPEC] [--budget N]
//! tracefill campaign <fig8|table2|spec.json> [--out results.jsonl] [--jobs N] [--quiet]
//! tracefill report <results.jsonl> [--format fig8|table2|cpi|summary|all]
//! ```
//!
//! Numeric flags are parsed strictly: a malformed value is a usage error
//! (exit 2), never a silent fall-back to the default.

use std::process::exit;
use tracefill_core::config::OptConfig;
use tracefill_harness::grid::parse_opt_spec;
use tracefill_harness::{report, run_campaign, store, CampaignSpec, ResultStore};
use tracefill_isa::asm::assemble;
use tracefill_isa::interp::Interp;
use tracefill_isa::syscall::IoCtx;
use tracefill_isa::Program;
use tracefill_sim::{SimConfig, Simulator};

fn usage() -> ! {
    eprintln!(
        "usage:
  tracefill run <file.s> [--opts SPEC] [--input a,b,c] [--max-cycles N] [--json] [--stats-json <file>] [--trace N]
  tracefill trace <file.s> [--out <file>] [--format jsonl|chrome] [--depth N] [--opts SPEC] [--input a,b,c] [--max-cycles N]
  tracefill interp <file.s> [--input a,b,c]
  tracefill characterize <file.s>
  tracefill suite [--opts SPEC] [--budget N]
  tracefill campaign <fig8|table2|spec.json> [--out results.jsonl] [--jobs N] [--quiet]
  tracefill report <results.jsonl> [--format fig8|table2|cpi|summary|all]

SPEC is `all`, `none`, or a comma list of: moves reassoc scadd placement cse"
    );
    exit(2);
}

fn parse_opts(spec: &str) -> OptConfig {
    parse_opt_spec(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

/// The value following `name`, if the flag is present. A flag given
/// without a value is a usage error.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("{name} requires a value");
            exit(2);
        }
    }
}

/// Strict numeric flag: absent → `default`; present but malformed →
/// usage error (exit 2). Never silently falls back.
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value `{v}` for {name}");
            exit(2);
        }),
    }
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    assemble(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    })
}

fn parse_input(args: &[String]) -> IoCtx {
    match flag_value(args, "--input") {
        Some(list) => IoCtx::with_input(list.split(',').filter(|p| !p.is_empty()).map(|p| {
            p.parse().unwrap_or_else(|_| {
                eprintln!("bad input value `{p}`");
                exit(2);
            })
        })),
        None => IoCtx::default(),
    }
}

fn cmd_run(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let max_cycles: u64 = parse_flag(args, "--max-cycles", 200_000_000);
    let json = args.iter().any(|a| a == "--json");
    let trace_depth: usize = parse_flag(args, "--trace", 0);

    let cfg = SimConfig {
        trace_depth,
        ..SimConfig::with_opts(opts)
    };
    let mut sim = Simulator::with_io(&prog, cfg, parse_input(args));
    let exit_state = sim.run(max_cycles).unwrap_or_else(|e| {
        eprintln!("simulation error: {e}");
        exit(1);
    });
    let report = sim.report();
    if let Some(stats_path) = flag_value(args, "--stats-json") {
        let text = report.to_json().dump_pretty(2);
        std::fs::write(&stats_path, text + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {stats_path}: {e}");
            exit(1);
        });
    }
    if json {
        println!("{}", report.to_json().dump_pretty(2));
        return;
    }
    let s = report.stats;
    println!("exit        : {exit_state:?}");
    println!("output      : {:?}", sim.io().output);
    println!("cycles      : {}", s.cycles);
    println!("retired     : {}", s.retired);
    println!("IPC         : {:.3}", s.ipc());
    println!("from TC     : {:.1}%", s.tc_fraction() * 100.0);
    println!("TC hit rate : {:.1}%", report.tcache.hit_rate() * 100.0);
    println!("mispredict  : {:.2}%", s.mispredict_rate() * 100.0);
    println!(
        "transformed : {:.1}% (moves {} / reassoc {} / scadd {})",
        s.transformed_fraction() * 100.0,
        s.retired_moves,
        s.retired_reassoc,
        s.retired_scadd
    );
    println!(
        "bypass-delayed: {:.1}% of FU-executed instructions",
        s.bypass_delay_fraction() * 100.0
    );
    let cpi = report.cpi;
    if cpi.base > 0 {
        println!("CPI stack   : {:.4} total", 1.0 / s.ipc());
        println!("  {:<15} {:.4}", "base", cpi.cpi_of(cpi.base));
        for (name, slots) in cpi.stall_slots() {
            if slots > 0 {
                println!("  {:<15} {:.4}", name, cpi.cpi_of(slots));
            }
        }
    }
    if trace_depth > 0 {
        println!("--- last {} pipeline events ---", sim.trace().len());
        print!("{}", sim.trace().render());
    }
}

fn cmd_trace(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let prog = load(path);
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let depth: usize = parse_flag(args, "--depth", 65_536);
    if depth == 0 {
        eprintln!("--depth must be at least 1");
        exit(2);
    }
    let max_cycles: u64 = parse_flag(args, "--max-cycles", 200_000_000);
    let format = flag_value(args, "--format").unwrap_or_else(|| "jsonl".into());

    let cfg = SimConfig {
        trace_depth: depth,
        ..SimConfig::with_opts(opts)
    };
    let mut sim = Simulator::with_io(&prog, cfg, parse_input(args));
    sim.run(max_cycles).unwrap_or_else(|e| {
        eprintln!("simulation error: {e}");
        exit(1);
    });
    let text = match format.as_str() {
        "jsonl" => sim.trace().to_jsonl(),
        "chrome" => sim.trace().to_chrome_trace().dump_pretty(2) + "\n",
        other => {
            eprintln!("unknown trace format `{other}` (expected jsonl, chrome)");
            exit(2);
        }
    };
    match flag_value(args, "--out") {
        Some(out) => {
            std::fs::write(&out, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1);
            });
            eprintln!(
                "wrote {} events ({} bytes, {format}) -> {out}",
                sim.trace().len(),
                text.len()
            );
        }
        None => print!("{text}"),
    }
}

fn cmd_interp(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let mut i = Interp::with_io(&prog, parse_input(args));
    match i.run(2_000_000_000) {
        Ok(h) => {
            println!("halt   : {h:?}");
            println!("instrs : {}", i.icount());
            println!("output : {:?}", i.io().output);
        }
        Err(e) => {
            eprintln!("fault: {e}");
            exit(1);
        }
    }
}

fn cmd_characterize(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let c = tracefill_workloads::characterize(&prog, 1_000_000);
    println!("instructions measured : {}", c.instrs);
    println!("register-move idioms  : {:5.2}%", c.moves * 100.0);
    println!("reassociable chains   : {:5.2}%", c.reassoc * 100.0);
    println!("scaled-add pairs      : {:5.2}%", c.scadd * 100.0);
    println!("total transformable   : {:5.2}%", c.total() * 100.0);
    println!("conditional branches  : {:5.2}%", c.branches * 100.0);
    println!(
        "loads / stores        : {:5.2}% / {:.2}%",
        c.loads * 100.0,
        c.stores * 100.0
    );
}

fn cmd_suite(args: &[String]) {
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let budget: u64 = parse_flag(args, "--budget", 100_000);
    println!(
        "{:6} {:>9} {:>9} {:>8}",
        "bench", "base IPC", "opt IPC", "delta"
    );
    for b in tracefill_workloads::suite() {
        let prog = b.program(b.scale_for(3 * budget)).unwrap();
        let measure = |o: OptConfig| {
            let mut sim = Simulator::new(&prog, SimConfig::with_opts(o));
            sim.run_instrs(budget).unwrap();
            let (c0, r0) = (sim.cycle(), sim.stats().retired);
            sim.run_instrs(budget).unwrap();
            (sim.stats().retired - r0) as f64 / (sim.cycle() - c0) as f64
        };
        let base = measure(OptConfig::none());
        let opt = measure(opts);
        println!(
            "{:6} {:9.3} {:9.3} {:+7.1}%",
            b.name,
            base,
            opt,
            (opt / base - 1.0) * 100.0
        );
    }
}

/// Resolves a campaign argument: a builtin name (`fig8`, `table2`) or a
/// path to a JSON spec file.
fn load_spec(arg: &str) -> CampaignSpec {
    if let Some(spec) = CampaignSpec::builtin(arg) {
        return spec;
    }
    let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        eprintln!("`{arg}` is not a builtin campaign (fig8, table2) and cannot be read as a spec file: {e}");
        exit(1);
    });
    CampaignSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{arg}: {e}");
        exit(1);
    })
}

fn cmd_campaign(args: &[String]) {
    let Some(spec_arg) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let spec = load_spec(spec_arg);
    let out = flag_value(args, "--out").unwrap_or_else(|| format!("{}.jsonl", spec.name));
    let default_jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs: usize = parse_flag(args, "--jobs", default_jobs);
    if jobs == 0 {
        eprintln!("--jobs must be at least 1");
        exit(2);
    }
    let quiet = args.iter().any(|a| a == "--quiet");

    let mut store = ResultStore::open(&out).unwrap_or_else(|e| {
        eprintln!("cannot open {out}: {e}");
        exit(1);
    });
    let summary = run_campaign(&spec, &mut store, jobs, !quiet).unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        exit(1);
    });
    println!(
        "campaign `{}`: {} runs ({} resumed, {} executed, {} failed) in {:.1}s -> {}",
        spec.name,
        summary.total,
        summary.skipped,
        summary.executed,
        summary.failed,
        summary.wall_ms as f64 / 1000.0,
        out,
    );
    if summary.failed > 0 {
        eprintln!(
            "note: {} run(s) did not finish Ok; see `tracefill report {out} --format summary`",
            summary.failed
        );
    }
}

fn cmd_report(args: &[String]) {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let records = store::load_records(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    if records.is_empty() {
        eprintln!("{path}: no parseable run records");
        exit(1);
    }
    let format = flag_value(args, "--format").unwrap_or_else(|| "all".into());
    match format.as_str() {
        "fig8" => print!("{}", report::fig8_table(&records)),
        "table2" => print!("{}", report::table2_table(&records)),
        "cpi" => print!("{}", report::cpi_table(&records)),
        "summary" => print!("{}", report::summary(&records)),
        "all" => {
            print!("{}", report::summary(&records));
            println!();
            print!("{}", report::fig8_table(&records));
            println!();
            print!("{}", report::table2_table(&records));
            println!();
            print!("{}", report::cpi_table(&records));
        }
        other => {
            eprintln!("unknown report format `{other}` (expected fig8, table2, cpi, summary, all)");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("interp") => cmd_interp(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        _ => usage(),
    }
}
