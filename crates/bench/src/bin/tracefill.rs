//! `tracefill` — command-line driver for the simulator.
//!
//! ```text
//! tracefill run <file.s> [--opts all|none|moves,reassoc,scadd,placement,cse]
//!                        [--input 1,2,3] [--max-cycles N] [--json]
//!                        [--trace N]   # print the last N pipeline events
//! tracefill interp <file.s> [--input 1,2,3]
//! tracefill characterize <file.s>
//! tracefill suite [--opts SPEC] [--budget N]
//! ```

use std::process::exit;
use tracefill_core::config::OptConfig;
use tracefill_isa::asm::assemble;
use tracefill_isa::interp::Interp;
use tracefill_isa::syscall::IoCtx;
use tracefill_isa::Program;
use tracefill_sim::{SimConfig, Simulator};

fn usage() -> ! {
    eprintln!(
        "usage:
  tracefill run <file.s> [--opts SPEC] [--input a,b,c] [--max-cycles N] [--json] [--trace N]
  tracefill interp <file.s> [--input a,b,c]
  tracefill characterize <file.s>
  tracefill suite [--opts SPEC] [--budget N]

SPEC is `all`, `none`, or a comma list of: moves reassoc scadd placement cse"
    );
    exit(2);
}

fn parse_opts(spec: &str) -> OptConfig {
    match spec {
        "all" => return OptConfig::all(),
        "none" => return OptConfig::none(),
        _ => {}
    }
    let mut o = OptConfig::none();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        match part {
            "moves" => o.moves = true,
            "reassoc" => o.reassoc = true,
            "scadd" => o.scadd = true,
            "placement" | "place" => o.placement = true,
            "cse" => o.cse = true,
            other => {
                eprintln!("unknown optimization `{other}`");
                usage();
            }
        }
    }
    o
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    assemble(&src).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1);
    })
}

fn parse_input(args: &[String]) -> IoCtx {
    match flag_value(args, "--input") {
        Some(list) => IoCtx::with_input(
            list.split(',')
                .filter(|p| !p.is_empty())
                .map(|p| p.parse().unwrap_or_else(|_| {
                    eprintln!("bad input value `{p}`");
                    exit(2);
                })),
        ),
        None => IoCtx::default(),
    }
}

fn cmd_run(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let max_cycles: u64 = flag_value(args, "--max-cycles")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000_000);
    let json = args.iter().any(|a| a == "--json");
    let trace_depth: usize = flag_value(args, "--trace")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let cfg = SimConfig {
        trace_depth,
        ..SimConfig::with_opts(opts)
    };
    let mut sim = Simulator::with_io(&prog, cfg, parse_input(args));
    let exit_state = sim.run(max_cycles).unwrap_or_else(|e| {
        eprintln!("simulation error: {e}");
        exit(1);
    });
    let report = sim.report();
    if json {
        println!("{}", serde_json::to_string_pretty(&report).unwrap());
        return;
    }
    let s = report.stats;
    println!("exit        : {exit_state:?}");
    println!("output      : {:?}", sim.io().output);
    println!("cycles      : {}", s.cycles);
    println!("retired     : {}", s.retired);
    println!("IPC         : {:.3}", s.ipc());
    println!("from TC     : {:.1}%", s.tc_fraction() * 100.0);
    println!("TC hit rate : {:.1}%", report.tcache.hit_rate() * 100.0);
    println!("mispredict  : {:.2}%", s.mispredict_rate() * 100.0);
    println!(
        "transformed : {:.1}% (moves {} / reassoc {} / scadd {})",
        s.transformed_fraction() * 100.0,
        s.retired_moves,
        s.retired_reassoc,
        s.retired_scadd
    );
    println!(
        "bypass-delayed: {:.1}% of FU-executed instructions",
        s.bypass_delay_fraction() * 100.0
    );
    if trace_depth > 0 {
        println!("--- last {} pipeline events ---", sim.trace().len());
        print!("{}", sim.trace().render());
    }
}

fn cmd_interp(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let mut i = Interp::with_io(&prog, parse_input(args));
    match i.run(2_000_000_000) {
        Ok(h) => {
            println!("halt   : {h:?}");
            println!("instrs : {}", i.icount());
            println!("output : {:?}", i.io().output);
        }
        Err(e) => {
            eprintln!("fault: {e}");
            exit(1);
        }
    }
}

fn cmd_characterize(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let prog = load(path);
    let c = tracefill_workloads::characterize(&prog, 1_000_000);
    println!("instructions measured : {}", c.instrs);
    println!("register-move idioms  : {:5.2}%", c.moves * 100.0);
    println!("reassociable chains   : {:5.2}%", c.reassoc * 100.0);
    println!("scaled-add pairs      : {:5.2}%", c.scadd * 100.0);
    println!("total transformable   : {:5.2}%", c.total() * 100.0);
    println!("conditional branches  : {:5.2}%", c.branches * 100.0);
    println!("loads / stores        : {:5.2}% / {:.2}%", c.loads * 100.0, c.stores * 100.0);
}

fn cmd_suite(args: &[String]) {
    let opts = parse_opts(&flag_value(args, "--opts").unwrap_or_else(|| "all".into()));
    let budget: u64 = flag_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    println!("{:6} {:>9} {:>9} {:>8}", "bench", "base IPC", "opt IPC", "delta");
    for b in tracefill_workloads::suite() {
        let prog = b.program(b.scale_for(3 * budget)).unwrap();
        let measure = |o: OptConfig| {
            let mut sim = Simulator::new(&prog, SimConfig::with_opts(o));
            sim.run_instrs(budget).unwrap();
            let (c0, r0) = (sim.cycle(), sim.stats().retired);
            sim.run_instrs(budget).unwrap();
            (sim.stats().retired - r0) as f64 / (sim.cycle() - c0) as f64
        };
        let base = measure(OptConfig::none());
        let opt = measure(opts);
        println!(
            "{:6} {:9.3} {:9.3} {:+7.1}%",
            b.name,
            base,
            opt,
            (opt / base - 1.0) * 100.0
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("interp") => cmd_interp(&args[1..]),
        Some("characterize") => cmd_characterize(&args[1..]),
        Some("suite") => cmd_suite(&args[1..]),
        _ => usage(),
    }
}
