#!/usr/bin/env sh
# Tier-1 verification — runs fully offline (the workspace has no external
# dependencies; proptest/criterion targets are feature-gated off).
#
#   scripts/ci.sh
#
# Fails on the first failing step.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> OK"
