#!/usr/bin/env sh
# Tier-1 verification — runs fully offline (the workspace has no external
# dependencies; proptest/criterion targets are feature-gated off).
#
#   scripts/ci.sh
#
# Fails on the first failing step.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> trace export smoke (tracefill trace -> tracefill-util parse)"
SMOKE_DIR="target/ci-smoke"
mkdir -p "$SMOKE_DIR"
cat > "$SMOKE_DIR/smoke.s" <<'EOF'
        .text
main:   li   $s0, 64
loop:   andi $t0, $s0, 3
        add  $s1, $s1, $t0
        addi $s0, $s0, -1
        bgtz $s0, loop
        move $a0, $s1
        li   $v0, 1
        syscall
        li   $a0, 0
        li   $v0, 10
        syscall
EOF
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    trace "$SMOKE_DIR/smoke.s" --out "$SMOKE_DIR/smoke.jsonl"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    trace "$SMOKE_DIR/smoke.s" --format chrome --out "$SMOKE_DIR/smoke.chrome.json"
cargo run --release -q -p tracefill-bench --example validate_trace -- \
    jsonl "$SMOKE_DIR/smoke.jsonl"
cargo run --release -q -p tracefill-bench --example validate_trace -- \
    json "$SMOKE_DIR/smoke.chrome.json"
# Determinism: an identical run must export byte-identical traces.
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    trace "$SMOKE_DIR/smoke.s" --out "$SMOKE_DIR/smoke2.jsonl"
cmp "$SMOKE_DIR/smoke.jsonl" "$SMOKE_DIR/smoke2.jsonl"

echo "==> stats-json smoke (tracefill run --stats-json)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    run "$SMOKE_DIR/smoke.s" --stats-json "$SMOKE_DIR/smoke.stats.json" > /dev/null
cargo run --release -q -p tracefill-bench --example validate_trace -- \
    report "$SMOKE_DIR/smoke.stats.json"

echo "==> lockstep verify smoke (full suite x every opt set, oracle + strict verify)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    verify --budget 5000 > "$SMOKE_DIR/verify.txt"
grep -q "0 diverged" "$SMOKE_DIR/verify.txt"

echo "==> fault-injection determinism (same seed => byte-identical SDC table)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    inject --seed 1 --trials 10 --json > "$SMOKE_DIR/inject1.json"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    inject --seed 1 --trials 10 --json > "$SMOKE_DIR/inject2.json"
cmp "$SMOKE_DIR/inject1.json" "$SMOKE_DIR/inject2.json"
# With all checkers armed (the default), nothing slips through silently.
grep -q '"silent": 0' "$SMOKE_DIR/inject1.json"

echo "==> self-repair determinism (same seed + plan => byte-identical repair JSON)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    inject --self-repair --detect oracle --seed 1 --trials 10 --json \
    > "$SMOKE_DIR/heal-inject1.json"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    inject --self-repair --detect oracle --seed 1 --trials 10 --json \
    > "$SMOKE_DIR/heal-inject2.json"
cmp "$SMOKE_DIR/heal-inject1.json" "$SMOKE_DIR/heal-inject2.json"
grep -q '"self_repair": true' "$SMOKE_DIR/heal-inject1.json"
# The availability sweep's exit code is its acceptance bar: any armed run
# that still dies fails the build.
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    heal --seed 1 --trials 10 --json > "$SMOKE_DIR/heal.json"
grep -q '"fatal": 0' "$SMOKE_DIR/heal.json"

echo "==> self-repair-off identity (an armed, healthy machine changes nothing)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    run "$SMOKE_DIR/smoke.s" --stats-json "$SMOKE_DIR/norepair.stats.json" > /dev/null
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    run "$SMOKE_DIR/smoke.s" --self-repair --stats-json "$SMOKE_DIR/repair.stats.json" > /dev/null
# A clean armed run emits no repair.* metrics, so the two reports must be
# byte-identical — a stronger bar than the ledger's member-wise identity.
cmp "$SMOKE_DIR/norepair.stats.json" "$SMOKE_DIR/repair.stats.json"

echo "==> adaptive-policy smoke (same seed => byte-identical adapt report)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    adapt --bench m88k,comp --opts none:all --mode ucb:100 --seed 1 \
    --warmup 4000 --budget 4000 --epoch 64 --json > "$SMOKE_DIR/adapt1.json"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    adapt --bench m88k,comp --opts none:all --mode ucb:100 --seed 1 \
    --warmup 4000 --budget 4000 --epoch 64 --json > "$SMOKE_DIR/adapt2.json"
cmp "$SMOKE_DIR/adapt1.json" "$SMOKE_DIR/adapt2.json"
grep -q '"controller": "ucb:100"' "$SMOKE_DIR/adapt1.json"
grep -q '"best_single_static"' "$SMOKE_DIR/adapt1.json"
# The replacement-policy axis stays live through the plain run path.
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    run "$SMOKE_DIR/smoke.s" --replace trrip --json > "$SMOKE_DIR/trrip.json"

echo "==> segment-ledger determinism (same seed => byte-identical ROI report)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    ledger --bench m88k,comp --seed 1 --warmup 2000 --budget 10000 --json \
    > "$SMOKE_DIR/ledger1.json"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    ledger --bench m88k,comp --seed 1 --warmup 2000 --budget 10000 --json \
    > "$SMOKE_DIR/ledger2.json"
cmp "$SMOKE_DIR/ledger1.json" "$SMOKE_DIR/ledger2.json"
grep -q '"per_pass"' "$SMOKE_DIR/ledger1.json"

echo "==> ledger-off identity (observation must not perturb the simulation)"
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    run "$SMOKE_DIR/smoke.s" --stats-json "$SMOKE_DIR/plain.stats.json" > /dev/null
cargo run --release -q -p tracefill-bench --bin tracefill -- \
    run "$SMOKE_DIR/smoke.s" --ledger --stats-json "$SMOKE_DIR/ledger.stats.json" > /dev/null
cargo run --release -q -p tracefill-bench --example validate_trace -- \
    identity "$SMOKE_DIR/plain.stats.json" "$SMOKE_DIR/ledger.stats.json"

echo "==> cargo doc (no warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps

echo "==> OK"
