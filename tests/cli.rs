//! End-to-end tests of the `tracefill` binary itself: output-path
//! validation must fail fast with a clear message and nonzero exit, and
//! the ledger report must be byte-deterministic across invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracefill"))
}

/// A per-test scratch directory under the system temp dir.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracefill-cli-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny kernel that halts in a few hundred cycles.
fn smoke_program(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("smoke.s");
    std::fs::write(
        &path,
        "        .text
main:   li   $s0, 64
loop:   andi $t0, $s0, 3
        add  $s1, $s1, $t0
        addi $s0, $s0, -1
        bgtz $s0, loop
        li   $a0, 0
        li   $v0, 10
        syscall
",
    )
    .unwrap();
    path
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn run_stats_json_rejects_missing_parent_before_simulating() {
    let dir = scratch("stats-json");
    let prog = smoke_program(&dir);
    let bad = dir.join("no-such-dir").join("stats.json");
    let out = bin()
        .args(["run", prog.to_str().unwrap(), "--stats-json"])
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("cannot write"), "unhelpful error: {err}");
    assert!(
        err.contains("does not exist"),
        "should name the missing parent: {err}"
    );
    assert!(!bad.exists());
}

#[test]
fn trace_out_rejects_missing_parent_and_directory_targets() {
    let dir = scratch("trace-out");
    let prog = smoke_program(&dir);
    let bad = dir.join("absent").join("trace.jsonl");
    let out = bin()
        .args(["trace", prog.to_str().unwrap(), "--out"])
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("cannot write"), "{}", stderr(&out));

    // Naming an existing directory is just as unwritable.
    let out = bin()
        .args(["trace", prog.to_str().unwrap(), "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("is a directory"), "{}", stderr(&out));
}

#[test]
fn ledger_out_rejects_missing_parent() {
    let dir = scratch("ledger-out");
    let bad = dir.join("absent").join("ledger.json");
    let out = bin()
        .args(["ledger", "--bench", "m88k", "--budget", "2000", "--out"])
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("cannot write"), "{}", stderr(&out));
}

#[test]
fn malformed_numeric_flags_are_usage_errors() {
    let dir = scratch("usage");
    let prog = smoke_program(&dir);
    let out = bin()
        .args(["run", prog.to_str().unwrap(), "--max-cycles", "banana"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid value"), "{}", stderr(&out));
}

#[test]
fn zero_sized_axes_are_rejected_with_exit_1() {
    // `adapt --epoch 0` used to be silently clamped to 1; it is now a
    // hard, explained error — as are empty campaign axes and a
    // zero-cycle run cap.
    let out = bin().args(["adapt", "--epoch", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--epoch"), "{}", stderr(&out));

    let out = bin().args(["adapt", "--bench", ","]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("no benchmarks"), "{}", stderr(&out));

    let out = bin().args(["adapt", "--opts", ":"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("no optimization"), "{}", stderr(&out));

    let out = bin().args(["adapt", "--budget", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--budget"), "{}", stderr(&out));

    let dir = scratch("axes");
    let prog = smoke_program(&dir);
    let out = bin()
        .args(["run", prog.to_str().unwrap(), "--max-cycles", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--max-cycles"), "{}", stderr(&out));
}

#[test]
fn heal_sweep_has_zero_fatal_divergences_and_is_byte_deterministic() {
    let args = [
        "heal", "--trials", "3", "--budget", "6000", "--seed", "7", "--json",
    ];
    let a = bin().args(args).output().unwrap();
    // Exit 0 IS the acceptance assertion: heal exits 1 on any fatal run.
    assert!(a.status.success(), "stderr: {}", stderr(&a));
    let b = bin().args(args).output().unwrap();
    assert_eq!(a.stdout, b.stdout, "same seed must emit identical bytes");
    let text = String::from_utf8(a.stdout).unwrap();
    assert!(text.contains("\"recovered\""), "{text}");
    assert!(text.contains("\"fatal\": 0"), "{text}");
    assert!(text.contains("\"ladder\""), "{text}");
}

#[test]
fn inject_gains_recovered_and_fatal_columns_under_self_repair() {
    let out = bin()
        .args([
            "inject",
            "--self-repair",
            "--detect",
            "oracle",
            "--trials",
            "3",
            "--budget",
            "6000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("self-repair=on"), "{text}");
    assert!(text.contains("recovered"), "{text}");
    assert!(text.contains("fatal"), "{text}");

    // Self-repair without any oracle is a contradiction, not a run.
    let out = bin()
        .args(["inject", "--self-repair", "--detect", "none"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("oracle"), "{}", stderr(&out));
}

#[test]
fn ledger_json_is_byte_deterministic() {
    let args = [
        "ledger", "--bench", "m88k", "--seed", "1", "--warmup", "1000", "--budget", "8000",
        "--json",
    ];
    let a = bin().args(args).output().unwrap();
    let b = bin().args(args).output().unwrap();
    assert!(a.status.success(), "stderr: {}", stderr(&a));
    assert_eq!(a.stdout, b.stdout, "same seed must emit identical bytes");
    let text = String::from_utf8(a.stdout).unwrap();
    assert!(text.contains("\"per_pass\""), "{text}");
    assert!(text.contains("\"doa\""), "{text}");
}
