//! Cross-crate integration: the whole suite runs on the whole machine,
//! architecturally verified, under representative configurations.
//!
//! Every simulator run here has oracle lockstep enabled: the test passing
//! means every retired register write, store, branch direction and
//! indirect target matched the functional interpreter, through wrong-path
//! execution, inactive issue, checkpoint repair and all four fill-unit
//! optimizations.

use tracefill_core::config::OptConfig;
use tracefill_sim::{SimConfig, Simulator};

const WINDOW: u64 = 25_000;

#[test]
fn whole_suite_runs_verified_on_the_baseline() {
    for b in tracefill_workloads::suite() {
        let prog = b.program(b.scale_for(2 * WINDOW)).unwrap();
        let mut sim = Simulator::new(&prog, SimConfig::default());
        sim.run_instrs(WINDOW)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(sim.stats().retired >= WINDOW, "{}: ended early", b.name);
        assert!(sim.stats().ipc() > 0.2, "{}: implausible IPC", b.name);
    }
}

#[test]
fn whole_suite_runs_verified_with_all_optimizations() {
    // A longer window: transformed instructions only retire once the trace
    // cache is warm enough to supply optimized lines.
    let window = 3 * WINDOW;
    for b in tracefill_workloads::suite() {
        let prog = b.program(b.scale_for(2 * window)).unwrap();
        let mut sim = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
        sim.run_instrs(window)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let s = sim.stats();
        assert!(s.retired >= window, "{}: ended early", b.name);
        // Every kernel exercises at least one optimization dynamically.
        assert!(
            s.retired_moves + s.retired_reassoc + s.retired_scadd > 0,
            "{}: no transformed instructions retired",
            b.name
        );
    }
}

#[test]
fn suite_outputs_match_the_interpreter_end_to_end() {
    // Short full runs to completion: simulator output == interpreter output.
    for b in tracefill_workloads::suite() {
        let prog = b.program(2).unwrap();
        let mut interp = tracefill_isa::interp::Interp::new(&prog);
        interp.run(20_000_000).unwrap();

        let mut sim = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
        let exit = sim.run(80_000_000).unwrap();
        assert!(
            matches!(exit, tracefill_sim::RunExit::Exited(_)),
            "{}: {exit:?}",
            b.name
        );
        assert_eq!(sim.io().output, interp.io().output, "{}", b.name);
    }
}

#[test]
fn fill_latency_changes_do_not_break_anything() {
    let b = tracefill_workloads::by_name("ijpeg").unwrap();
    let prog = b.program(b.scale_for(2 * WINDOW)).unwrap();
    for lat in [0u32, 1, 5, 10, 40] {
        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.fill.latency = lat;
        let mut sim = Simulator::new(&prog, cfg);
        sim.run_instrs(WINDOW)
            .unwrap_or_else(|e| panic!("latency {lat}: {e}"));
    }
}

#[test]
fn characterization_matches_runtime_transformation_counts() {
    // The offline characterizer and the pipeline's retire-time accounting
    // view the same fill unit; their densities must roughly agree.
    let b = tracefill_workloads::by_name("plot").unwrap();
    let prog = b.program(b.scale_for(120_000)).unwrap();
    let offline = tracefill_workloads::characterize(&prog, 60_000);

    let mut sim = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
    sim.run_instrs(60_000).unwrap();
    let s = sim.stats();
    let online = s.retired_moves as f64 / s.retired as f64;
    assert!(
        (online - offline.moves).abs() < 0.05,
        "move densities diverge: online {online:.3} vs offline {:.3}",
        offline.moves
    );
}

#[test]
fn generated_workloads_run_on_the_full_machine() {
    use tracefill_workloads::gen::{generate, PatternMix};
    let prog = generate(&PatternMix::default(), 32, 5_000, 42).unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
    sim.run_instrs(WINDOW).unwrap();
    assert!(sim.stats().retired >= WINDOW);
}
