//! Shape checks against the paper's evaluation: not absolute numbers (our
//! substrate is a synthetic-workload simulator, not the authors' testbed)
//! but the qualitative claims — who wins, roughly where, and what does
//! not matter.

use tracefill_core::config::OptConfig;
use tracefill_sim::{SimConfig, Simulator};
use tracefill_workloads::Benchmark;

const WARMUP: u64 = 30_000;
const WINDOW: u64 = 60_000;

fn ipc(b: &Benchmark, cfg: SimConfig) -> f64 {
    let prog = b.program(b.scale_for(2 * (WARMUP + WINDOW))).unwrap();
    let mut sim = Simulator::new(&prog, cfg);
    sim.run_instrs(WARMUP).unwrap();
    let (c0, r0) = (sim.cycle(), sim.stats().retired);
    sim.run_instrs(WINDOW).unwrap();
    (sim.stats().retired - r0) as f64 / (sim.cycle() - c0) as f64
}

fn improvement(b: &Benchmark, opts: OptConfig) -> f64 {
    ipc(b, SimConfig::with_opts(opts)) / ipc(b, SimConfig::default()) - 1.0
}

#[test]
fn combined_optimizations_help_on_geomean() {
    // Paper: ~+18% across the suite. Our synthetic suite reproduces the
    // direction and a substantial fraction of the magnitude.
    let mut ln_sum = 0.0;
    for b in tracefill_workloads::suite() {
        ln_sum += (1.0 + improvement(&b, OptConfig::all())).ln();
    }
    let geo = (ln_sum / 15.0).exp() - 1.0;
    assert!(
        geo > 0.03,
        "combined optimizations should clearly help (got {:+.1}%)",
        geo * 100.0
    );
}

#[test]
fn moves_help_the_move_dense_benchmarks() {
    // Paper fig 3: ~5% average; the win tracks move density.
    let plot = improvement(
        &tracefill_workloads::by_name("plot").unwrap(),
        OptConfig::only_moves(),
    );
    let gcc = improvement(
        &tracefill_workloads::by_name("gcc").unwrap(),
        OptConfig::only_moves(),
    );
    assert!(
        plot > 0.05,
        "gnuplot should gain >5% from moves, got {plot:+.3}"
    );
    assert!(gcc > 0.03, "gcc should gain >3% from moves, got {gcc:+.3}");
}

#[test]
fn fill_unit_latency_is_negligible() {
    // Paper fig 8: latencies of 1, 5 and 10 cycles perform the same.
    let b = tracefill_workloads::by_name("ijpeg").unwrap();
    let mut ipcs = Vec::new();
    for lat in [1u32, 5, 10] {
        let mut cfg = SimConfig::with_opts(OptConfig::all());
        cfg.fill.latency = lat;
        ipcs.push(ipc(&b, cfg));
    }
    let spread = (ipcs.iter().cloned().fold(f64::MIN, f64::max)
        - ipcs.iter().cloned().fold(f64::MAX, f64::min))
        / ipcs[0];
    assert!(
        spread < 0.05,
        "fill latency should be negligible; IPCs {ipcs:?}"
    );
}

#[test]
fn placement_reduces_bypass_delays_on_parallel_chain_code() {
    // Paper fig 7: placement cuts the delayed fraction (35% -> 29%).
    // The effect is cleanest where independent chains dominate.
    let src = r#"
        .text
main:   li   $s7, 60000
        li   $s0, 1
        li   $s1, 1
        li   $s2, 1
        li   $s3, 1
loop:   xor  $s0, $s0, $s7
        xor  $s1, $s1, $s7
        xor  $s2, $s2, $s7
        xor  $s3, $s3, $s7
        add  $s0, $s0, $s0
        add  $s1, $s1, $s1
        add  $s2, $s2, $s2
        add  $s3, $s3, $s3
        xor  $s0, $s0, $s1
        xor  $s1, $s1, $s2
        xor  $s2, $s2, $s3
        xor  $s3, $s3, $s0
        addi $s7, $s7, -1
        bgtz $s7, loop
        li   $v0, 10
        syscall
"#;
    let prog = tracefill_isa::asm::assemble(src).unwrap();
    let frac = |opts: OptConfig| {
        let mut sim = Simulator::new(&prog, SimConfig::with_opts(opts));
        sim.run_instrs(WARMUP + WINDOW).unwrap();
        (sim.stats().bypass_delay_fraction(), sim.stats().ipc())
    };
    let (base_frac, base_ipc) = frac(OptConfig::none());
    let (place_frac, place_ipc) = frac(OptConfig::only_placement());
    assert!(
        place_frac < base_frac * 0.85,
        "placement should cut bypass delays: {base_frac:.3} -> {place_frac:.3}"
    );
    assert!(
        place_ipc > base_ipc * 1.05,
        "placement should speed up chain code: {base_ipc:.3} -> {place_ipc:.3}"
    );
}

#[test]
fn reassociation_favors_the_chain_heavy_benchmarks() {
    // Paper fig 4 + table 2: m88ksim leads because its stream is the most
    // reassociable; most benchmarks see only 1-2%.
    let m88k = tracefill_workloads::by_name("m88k").unwrap();
    let go = tracefill_workloads::by_name("go").unwrap();
    let prog_m = m88k.program(m88k.scale_for(80_000)).unwrap();
    let prog_g = go.program(go.scale_for(80_000)).unwrap();
    let cm = tracefill_workloads::characterize(&prog_m, 60_000);
    let cg = tracefill_workloads::characterize(&prog_g, 60_000);
    assert!(
        cm.reassoc > cg.reassoc,
        "m88ksim must be more reassociable than go ({:.3} vs {:.3})",
        cm.reassoc,
        cg.reassoc
    );
}

#[test]
fn scaled_adds_favor_the_array_benchmarks() {
    // Paper fig 5 + table 2: go leads on shift+add density.
    let go = tracefill_workloads::by_name("go").unwrap();
    let pgp = tracefill_workloads::by_name("pgp").unwrap();
    let prog_go = go.program(go.scale_for(80_000)).unwrap();
    let prog_pgp = pgp.program(pgp.scale_for(80_000)).unwrap();
    let cgo = tracefill_workloads::characterize(&prog_go, 60_000);
    let cpgp = tracefill_workloads::characterize(&prog_pgp, 60_000);
    assert!(
        cgo.scadd > cpgp.scadd,
        "go must out-scadd pgp ({:.3} vs {:.3})",
        cgo.scadd,
        cpgp.scadd
    );
}

#[test]
fn transformed_fraction_is_in_the_paper_ballpark() {
    // Paper table 2: on average ~13% of instructions get some
    // transformation; every benchmark lands between ~8% and ~22%.
    let mut total = 0.0;
    for b in tracefill_workloads::suite() {
        let prog = b.program(b.scale_for(120_000)).unwrap();
        let mut sim = Simulator::new(&prog, SimConfig::with_opts(OptConfig::all()));
        sim.run_instrs(60_000).unwrap();
        total += sim.stats().transformed_fraction();
    }
    let mean = total / 15.0;
    assert!(
        (0.05..0.30).contains(&mean),
        "mean transformed fraction {mean:.3} outside the plausible band"
    );
}
