//! Differential fuzzing: seeded random programs from the pattern-mix
//! generator, run to completion under randomized machine configurations
//! with oracle lockstep on, outputs compared against the interpreter.
//!
//! Each case that completes is a full architectural equivalence proof for
//! one (program, machine) pair — this is the widest net in the suite.

use tracefill_core::config::OptConfig;
use tracefill_sim::{RunExit, SimConfig, Simulator};
use tracefill_workloads::gen::{generate, PatternMix};

fn mix_for(seed: u64) -> PatternMix {
    // Vary the mix deterministically with the seed.
    PatternMix {
        moves: 1 + (seed % 5) as u32,
        imm_chains: 1 + (seed / 5 % 5) as u32,
        shift_adds: 1 + (seed / 25 % 5) as u32,
        alu: 2 + (seed / 125 % 6) as u32,
        memory: 1 + (seed / 750 % 4) as u32,
    }
}

fn config_for(seed: u64) -> SimConfig {
    let mut opts = OptConfig::none();
    opts.moves = seed & 1 != 0;
    opts.reassoc = seed & 2 != 0;
    opts.scadd = seed & 4 != 0;
    opts.placement = seed & 8 != 0;
    opts.cse = seed & 16 != 0;
    opts.reassoc_cross_block_only = seed & 32 != 0;
    let mut cfg = SimConfig::with_opts(opts);
    cfg.inactive_issue = seed & 64 != 0;
    cfg.fill.packing = seed & 128 != 0;
    cfg.fill.promotion = seed & 256 != 0;
    cfg.fill.align_loops = seed & 512 != 0;
    cfg.fill.latency = (seed % 7) as u32;
    if seed & 1024 != 0 {
        // A tiny trace cache stresses replacement and the icache path.
        cfg.tcache.entries = 8;
        cfg.tcache.ways = 2;
    }
    cfg
}

#[test]
fn random_programs_times_random_machines_stay_architectural() {
    for seed in 0..48u64 {
        let prog = generate(&mix_for(seed), 16 + (seed % 24) as usize, 120, seed)
            .unwrap_or_else(|e| panic!("seed {seed}: generator produced bad asm: {e}"));

        let mut interp = tracefill_isa::interp::Interp::new(&prog);
        interp.run(50_000_000).unwrap();

        let mut sim = Simulator::new(&prog, config_for(seed * 0x9e37_79b9));
        let exit = sim
            .run(100_000_000)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(matches!(exit, RunExit::Exited(_)), "seed {seed}: {exit:?}");
        assert_eq!(
            sim.io().output,
            interp.io().output,
            "seed {seed}: output mismatch"
        );
    }
}
